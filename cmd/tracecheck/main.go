// Command tracecheck validates and converts descriptor-protocol trace
// files (the JSONL written by kvserver -trace and composebench -trace;
// see internal/obs and docs/observability.md).
//
// It parses the whole file strictly — any malformed line or unknown
// event kind fails the run — prints per-kind event counts, and exits
// nonzero if a -require'd kind is absent, which is how the CI
// observability smoke asserts that helping actually happened under a
// fault rule:
//
//	tracecheck -require help -require publish /tmp/kvtrace.jsonl
//
// -chrome FILE additionally converts the events to the Chrome
// trace_event format; load the result in chrome://tracing or
// https://ui.perfetto.dev to see the protocol timeline per thread.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro"
	"repro/internal/obs"
)

// requireFlags collects repeatable -require event kinds.
type requireFlags []string

func (f *requireFlags) String() string { return fmt.Sprint(*f) }
func (f *requireFlags) Set(s string) error {
	if _, ok := obs.KindFromString(s); !ok {
		return fmt.Errorf("unknown event kind %q", s)
	}
	*f = append(*f, s)
	return nil
}

func main() {
	var require requireFlags
	chrome := flag.String("chrome", "", "also convert the trace to Chrome trace_event JSON at this path")
	flag.Var(&require, "require", "event kind that must appear at least once (repeatable): publish, help, commit, abort, recycle, batch-flush, map-migrate")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require kind]... [-chrome out.json] trace.jsonl")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	events, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", flag.Arg(0), err))
	}

	counts := make(map[string]int)
	for _, ev := range events {
		counts[ev.Kind.String()]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("tracecheck: %s: %d events\n", flag.Arg(0), len(events))
	for _, k := range kinds {
		fmt.Printf("  %-12s %d\n", k, counts[k])
	}

	ok := true
	for _, k := range require {
		if counts[k] == 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: required event kind %q absent\n", k)
			ok = false
		}
	}

	if *chrome != "" {
		out, err := os.Create(*chrome)
		if err == nil {
			err = repro.WriteChromeTrace(out, events)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fatal(fmt.Errorf("-chrome: %w", err))
		}
		fmt.Printf("tracecheck: chrome trace written to %s\n", *chrome)
	}
	if !ok {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
