// Command stress runs a long-lived conservation workload over a pair of
// move-ready containers and fails loudly if composition atomicity is
// ever violated (a token lost or duplicated).
//
// Unique tokens circulate between two containers through atomic moves
// and remove/re-insert cycles. Periodically the workload quiesces, every
// token is audited, and circulation resumes. Any mismatch aborts with a
// non-zero exit code.
//
//	stress -pair queue/stack -threads 8 -rounds 20 -ops 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
)

func main() {
	var (
		pairName = flag.String("pair", "queue/stack", "queue/queue, stack/stack, queue/stack, map/map, list/queue")
		threads  = flag.Int("threads", 8, "worker threads")
		tokens   = flag.Int("tokens", 512, "circulating tokens")
		rounds   = flag.Int("rounds", 10, "audit rounds")
		ops      = flag.Int("ops", 100_000, "operations per thread per round")
		moveBias = flag.Int("movebias", 50, "percent of operations that are moves")
	)
	flag.Parse()

	rt := repro.NewRuntime(repro.Config{
		MaxThreads:    *threads + 1,
		ArenaCapacity: 1 << 21,
		DescCapacity:  1 << 18,
	})
	setup := rt.RegisterThread()
	a, b, keyed := buildPair(setup, *pairName)
	if a == nil {
		fmt.Fprintf(os.Stderr, "stress: unknown -pair %q\n", *pairName)
		os.Exit(2)
	}

	for i := 1; i <= *tokens; i++ {
		tok := uint64(i)
		if i%2 == 0 {
			a.Insert(setup, tok, tok)
		} else {
			b.Insert(setup, tok, tok)
		}
	}

	workers := make([]*core.Thread, *threads)
	for i := range workers {
		workers[i] = rt.RegisterThread()
	}

	fmt.Printf("stress: pair=%s threads=%d tokens=%d rounds=%d ops/round=%d\n",
		*pairName, *threads, *tokens, *rounds, *ops)

	for round := 1; round <= *rounds; round++ {
		t0 := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < *threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := workers[w]
				rng := uint64(w+1)*0x9e3779b97f4a7c15 + uint64(round)
				next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
				for i := 0; i < *ops; i++ {
					tok := next()%uint64(*tokens) + 1
					doMove := int(next()%100) < *moveBias
					src, dst := a, b
					if next()&1 == 0 {
						src, dst = b, a
					}
					if doMove {
						skey, tkey := tok, tok
						if !keyed {
							skey, tkey = 0, 0
						}
						repro.Move(th, src, dst, skey, tkey)
					} else {
						skey := tok
						if !keyed {
							skey = 0
						}
						if v, ok := src.Remove(th, skey); ok {
							// Re-insert; retry into the other container
							// if the first insert hits a duplicate key.
							if !src.Insert(th, skey, v) {
								for !dst.Insert(th, skey, v) {
								}
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()

		// Audit: drain and count every token, then reinsert.
		seen := make(map[uint64]int)
		for _, c := range []repro.MoveReady{a, b} {
			if keyed {
				for k := uint64(1); k <= uint64(*tokens); k++ {
					if v, ok := c.Remove(setup, k); ok {
						seen[v]++
					}
				}
			} else {
				for {
					v, ok := c.Remove(setup, 0)
					if !ok {
						break
					}
					seen[v]++
				}
			}
		}
		bad := false
		if len(seen) != *tokens {
			bad = true
		}
		for tok, n := range seen {
			if n != 1 || tok == 0 || tok > uint64(*tokens) {
				bad = true
			}
		}
		if bad {
			fmt.Fprintf(os.Stderr, "stress: ROUND %d FAILED: %d distinct tokens (want %d)\n",
				round, len(seen), *tokens)
			os.Exit(1)
		}
		// Reinsert for the next round.
		i := 0
		for tok := range seen {
			tgt := a
			if i%2 == 0 {
				tgt = b
			}
			tgt.Insert(setup, tok, tok)
			i++
		}
		helps, strays, late := rt.DCASPool().Stats()
		fmt.Printf("round %2d ok (%6.2fs)  dcas-helps=%d strays=%d late-p2=%d\n",
			round, time.Since(t0).Seconds(), helps, strays, late)
	}
	fmt.Println("stress: all rounds passed — conservation intact")
}

// buildPair constructs the requested container pair; keyed reports
// whether tokens are addressed by key.
func buildPair(t *core.Thread, name string) (a, b repro.MoveReady, keyed bool) {
	switch name {
	case "queue/queue":
		return repro.NewQueue(t), repro.NewQueue(t), false
	case "stack/stack":
		return repro.NewStack(t), repro.NewStack(t), false
	case "queue/stack":
		return repro.NewQueue(t), repro.NewStack(t), false
	case "vstack/vstack":
		return repro.NewVersionedStack(t), repro.NewVersionedStack(t), false
	case "map/map":
		return repro.NewHashMap(t, 64), repro.NewHashMap(t, 64), true
	case "list/list":
		return repro.NewList(t), repro.NewList(t), true
	default:
		return nil, nil, false
	}
}
