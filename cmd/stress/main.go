// Command stress runs a long-lived conservation workload over a pair of
// move-ready containers and fails loudly if composition atomicity is
// ever violated (a token lost or duplicated).
//
// Unique tokens circulate between two containers through atomic moves
// and remove/re-insert cycles. Periodically the workload quiesces, every
// token is audited, and circulation resumes. Any mismatch aborts with a
// non-zero exit code.
//
// The rotation covers same-kind pairs (queue/queue, stack/stack,
// map/map, list/list), the paper's queue/stack mix, keyed↔unkeyed
// pairs (map/list, map/queue, list/queue) where a token addressed by key
// on one side travels by position on the other, and map/pqueue, where a
// keyed token on one side surfaces by priority order on the other (all
// re-inserted tokens share one priority, stressing the uniquifier).
// -elim adds the elimination-backoff layer to the containers that
// support it; -rotate cycles through every pairing within one run, one
// pair per audit round, carrying the tokens from pair to pair.
//
//	stress -pair queue/stack -threads 8 -rounds 20 -ops 200000
//	stress -pair map/queue -elim -threads 8
//	stress -rotate -threads 8 -rounds 18
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/pqueue"
)

// allPairs is the -rotate order: same-kind pairs first, then the mixed
// keyed↔unkeyed ones.
var allPairs = []string{
	"queue/queue", "stack/stack", "queue/stack", "vstack/vstack",
	"map/map", "list/list", "map/list", "map/queue", "list/queue",
	"map/pqueue",
}

func main() {
	var (
		pairName = flag.String("pair", "queue/stack",
			strings.Join(allPairs, ", "))
		threads  = flag.Int("threads", 8, "worker threads")
		tokens   = flag.Int("tokens", 512, "circulating tokens")
		rounds   = flag.Int("rounds", 10, "audit rounds")
		ops      = flag.Int("ops", 100_000, "operations per thread per round")
		moveBias = flag.Int("movebias", 50, "percent of operations that are moves")
		elim     = flag.Bool("elim", false, "enable the elimination-backoff layer")
		adaptive = flag.Bool("adaptive", false, "enable the adaptive contention-management subsystem")
		rotate   = flag.Bool("rotate", false, "cycle through all pairs within one run (one pair per round)")
	)
	flag.Parse()

	rt := repro.NewRuntime(repro.Config{
		MaxThreads:    *threads + 1,
		ArenaCapacity: 1 << 21,
		DescCapacity:  1 << 18,
		Elimination:   repro.EliminationConfig{Enable: *elim},
		Adaptive:      repro.AdaptiveConfig{Enable: *adaptive},
		// The audit lines read the metrics registry, so every counter
		// they print carries the same series name METRICS and STATS
		// expose — one naming scheme across all the stat surfaces.
		Obs: repro.ObsConfig{Metrics: true},
	})
	setup := rt.RegisterThread()
	curPair := *pairName
	if *rotate {
		curPair = allPairs[0]
	}
	a, b, akeyed, bkeyed := buildPair(setup, curPair)
	if a == nil {
		fmt.Fprintf(os.Stderr, "stress: unknown -pair %q\n", curPair)
		os.Exit(2)
	}

	// insertToken seeds tok into c: keyed sides address it by tok,
	// unkeyed sides get key 0 (for the priority queue that parks every
	// token at priority 0, the uniquifier-collision stress). A failed
	// insert here is a harness capacity error (e.g. more tokens than
	// one priority level's uniquifier space), not a data-structure
	// violation — abort loudly rather than let the next audit round
	// report a bogus conservation failure.
	insertToken := func(c repro.MoveReady, keyed bool, tok uint64) {
		k := uint64(0)
		if keyed {
			k = tok
		}
		if !c.Insert(setup, k, tok) {
			fmt.Fprintf(os.Stderr, "stress: setup cannot place token %d (capacity exceeded? lower -tokens)\n", tok)
			os.Exit(2)
		}
	}
	for i := 1; i <= *tokens; i++ {
		tok := uint64(i)
		if i%2 == 0 {
			insertToken(a, akeyed, tok)
		} else {
			insertToken(b, bkeyed, tok)
		}
	}

	workers := make([]*core.Thread, *threads)
	for i := range workers {
		workers[i] = rt.RegisterThread()
	}

	if *rotate {
		fmt.Printf("stress: rotating %d pairs threads=%d tokens=%d rounds=%d ops/round=%d\n",
			len(allPairs), *threads, *tokens, *rounds, *ops)
	} else {
		fmt.Printf("stress: pair=%s threads=%d tokens=%d rounds=%d ops/round=%d\n",
			*pairName, *threads, *tokens, *rounds, *ops)
	}

	// prev windows the registry so each audit line reports per-round
	// deltas; the registry itself stays cumulative (rotation registers
	// new containers' counters alongside the frozen retired ones).
	prev := rt.Obs().Metrics().Snapshot()
	for round := 1; round <= *rounds; round++ {
		roundPair := curPair
		t0 := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < *threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th := workers[w]
				rng := uint64(w+1)*0x9e3779b97f4a7c15 + uint64(round)
				next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
				for i := 0; i < *ops; i++ {
					tok := next()%uint64(*tokens) + 1
					doMove := int(next()%100) < *moveBias
					src, dst := a, b
					srcKeyed, dstKeyed := akeyed, bkeyed
					if next()&1 == 0 {
						src, dst = b, a
						srcKeyed, dstKeyed = bkeyed, akeyed
					}
					// Keys address tokens only on keyed sides; a
					// keyed↔unkeyed move scrambles the key→value
					// association, which the value-conservation audit
					// tolerates by design.
					key := func(keyed bool) uint64 {
						if keyed {
							return tok
						}
						return 0
					}
					if doMove {
						repro.Move(th, src, dst, key(srcKeyed), key(dstKeyed))
					} else {
						if v, ok := src.Remove(th, key(srcKeyed)); ok {
							// Re-insert, alternating containers until the
							// held token lands (a keyed slot may be
							// transiently occupied by a concurrent move).
							if !src.Insert(th, key(srcKeyed), v) {
								for !dst.Insert(th, key(dstKeyed), v) &&
									!src.Insert(th, key(srcKeyed), v) {
								}
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()

		// Audit: drain and count every token, then reinsert.
		seen := make(map[uint64]int)
		drain := func(c repro.MoveReady, keyed bool) {
			if keyed {
				for k := uint64(1); k <= uint64(*tokens); k++ {
					if v, ok := c.Remove(setup, k); ok {
						seen[v]++
					}
				}
				return
			}
			for {
				v, ok := c.Remove(setup, 0)
				if !ok {
					break
				}
				seen[v]++
			}
		}
		drain(a, akeyed)
		drain(b, bkeyed)
		bad := false
		if len(seen) != *tokens {
			bad = true
		}
		for tok, n := range seen {
			if n != 1 || tok == 0 || tok > uint64(*tokens) {
				bad = true
			}
		}
		if bad {
			fmt.Fprintf(os.Stderr, "stress: ROUND %d (%s) FAILED: %d distinct tokens (want %d)\n",
				round, roundPair, len(seen), *tokens)
			os.Exit(1)
		}
		// The audit line reports the round that just ran: snapshot the
		// registry at the quiescent point and print the window since the
		// previous audit, under the registry's own series names.
		snap := rt.Obs().Metrics().Snapshot()
		delta := snap.Sub(prev)
		prev = snap
		contention := contentionLine(delta, *elim, *adaptive)
		// Reinsert for the next round — into the next pair when
		// rotating: every token is drained (a quiescent state), so
		// handing the population to freshly built containers is a pure
		// transfer; the emptied pair becomes garbage.
		if *rotate && round < *rounds {
			curPair = allPairs[round%len(allPairs)]
			a, b, akeyed, bkeyed = buildPair(setup, curPair)
		}
		i := 0
		for tok := range seen {
			tgt, keyed := a, akeyed
			if i%2 == 0 {
				tgt, keyed = b, bkeyed
			}
			insertToken(tgt, keyed, tok)
			i++
		}
		fmt.Printf("round %2d %-12s ok (%6.2fs)  kcas_helps_total=%d kcas_stray_cleanups_total=%d kcas_late_p2_total=%d%s\n",
			round, roundPair, time.Since(t0).Seconds(),
			delta.Get("kcas_helps_total"),
			delta.Get("kcas_stray_cleanups_total"),
			delta.Get("kcas_late_p2_total"), contention)
	}
	fmt.Println("stress: all rounds passed — conservation intact")
}

// contentionLine renders the round's contention-layer counters out of a
// registry snapshot window, under the registry's series names — the
// same names the kvserver METRICS verb and STATS obs block use, so a
// grep written against one surface works on all of them. The registry
// already sums every container's contribution (the map's shards, both
// sides of the pair, retired rotation pairs' frozen counters).
func contentionLine(d repro.ObsSnapshot, elim, adaptive bool) string {
	out := fmt.Sprintf("  cas_retries_total=%d", d.Get("cas_retries_total"))
	if elim || adaptive {
		out += fmt.Sprintf(" elim_hits_total=%d elim_misses_total=%d",
			d.Get("elim_hits_total"), d.Get("elim_misses_total"))
	}
	if adaptive {
		out += fmt.Sprintf(" adapt[epochs=%d win=+%d/-%d attach=%d/%d pace=+%d/-%d]",
			d.Get("adapt_epochs_total"),
			d.Get("adapt_window_grows_total"), d.Get("adapt_window_shrinks_total"),
			d.Get("adapt_attaches_total"), d.Get("adapt_detaches_total"),
			d.Get("adapt_pace_raises_total"), d.Get("adapt_pace_decays_total"))
	}
	return out
}

// buildPair constructs the requested container pair; akeyed/bkeyed
// report whether tokens are addressed by key on each side. Mixed pairs
// (map/list alongside map/queue, list/queue and map/pqueue) give
// keyed↔unkeyed moves long-lived conservation coverage: the keyed side
// selects by token, the unkeyed side by position — or, for the
// priority queue, by priority order, with every re-inserted token
// parked at priority 0 so the uniquifier absorbs the collisions.
func buildPair(t *core.Thread, name string) (a, b repro.MoveReady, akeyed, bkeyed bool) {
	switch name {
	case "queue/queue":
		return repro.NewQueue(t), repro.NewQueue(t), false, false
	case "stack/stack":
		return repro.NewStack(t), repro.NewStack(t), false, false
	case "queue/stack":
		return repro.NewQueue(t), repro.NewStack(t), false, false
	case "vstack/vstack":
		return repro.NewVersionedStack(t), repro.NewVersionedStack(t), false, false
	case "map/map":
		return repro.NewHashMap(t, 64), repro.NewHashMap(t, 64), true, true
	case "map/list":
		return repro.NewHashMap(t, 64), repro.NewList(t), true, true
	case "map/queue":
		return repro.NewHashMap(t, 64), repro.NewQueue(t), true, false
	case "list/list":
		return repro.NewList(t), repro.NewList(t), true, true
	case "list/queue":
		return repro.NewList(t), repro.NewQueue(t), true, false
	case "map/pqueue":
		return repro.NewHashMap(t, 64), pqueue.New(t), true, false
	default:
		return nil, nil, false, false
	}
}
