package main

import (
	"testing"

	"repro/internal/kvwire"
	"repro/internal/xrand"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("get=60,put=15,del=5,move=10,transfer=4,push=2,pop=2,drain=2")
	if err != nil {
		t.Fatal(err)
	}
	if w[kvwire.OpGet] != 60 || w[kvwire.OpXfer] != 4 || w[kvwire.OpDrain] != 2 {
		t.Fatalf("weights %v", w)
	}
	for _, bad := range []string{"", "get", "get=x", "fly=10", "get=0,put=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestPickRespectsWeights(t *testing.T) {
	w, _ := parseMix("get=1,drain=3")
	var gets, drains int
	rng := xrand.New(7)
	for i := 0; i < 10000; i++ {
		switch w.pick(rng.Uint64()) {
		case kvwire.OpGet:
			gets++
		case kvwire.OpDrain:
			drains++
		default:
			t.Fatal("picked an op with zero weight")
		}
	}
	if gets == 0 || drains == 0 || drains < 2*gets {
		t.Fatalf("gets=%d drains=%d, want ~1:3", gets, drains)
	}
}

// TestRequestShapes checks that every generated request parses under
// the server's grammar — the two binaries sharing kvwire makes this a
// compile-time near-guarantee, but the composed ops' tenant and key
// distinctness is runtime logic worth pinning.
func TestRequestShapes(t *testing.T) {
	g := &generator{conns: 2, tenants: 3, keys: 8,
		weights: opWeights{1, 1, 1, 1, 1, 1, 1, 1}}
	rng := xrand.New(3)
	for i := 0; i < 5000; i++ {
		req := g.request(0, rng)
		line := string(req.Append(nil))
		if _, err := kvwire.ParseRequest(line[:len(line)-1], g.tenants); err != nil {
			t.Fatalf("generated unparseable request %q: %v", line, err)
		}
	}
	// Single-tenant runs must degrade composed ops instead of emitting
	// same-tenant pairs the server would reject.
	g1 := &generator{conns: 1, tenants: 1, keys: 8, weights: opWeights{kvwire.OpMove: 1}}
	for i := 0; i < 100; i++ {
		if req := g1.request(0, rng); req.Op != kvwire.OpGet {
			t.Fatalf("single-tenant composed op not degraded: %+v", req)
		}
	}
}

func TestTokensUnique(t *testing.T) {
	g := &generator{}
	rng := xrand.New(1)
	seen := make(map[uint64]bool)
	for owner := uint64(0); owner < 4; owner++ {
		for i := 0; i < 1000; i++ {
			v := g.token(owner, rng)
			if seen[v] {
				t.Fatalf("token %d repeated", v)
			}
			seen[v] = true
		}
	}
}
