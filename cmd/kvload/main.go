// Command kvload drives cmd/kvserver with an open-loop,
// coordinated-omission-safe workload and reports per-tenant, per-op
// latency percentiles.
//
// # Open loop, measured from intended start
//
// The generator fixes an arrival schedule up front: request i's
// intended send time is start + i/rate, independent of how fast the
// server answers. -conns connection workers pull request indices from
// a shared counter, sleep until each request's intended slot, and
// measure latency from the INTENDED time, not the actual send — so
// when the server (or the generator's own backlog) stalls, the wait
// shows up in the recorded tail instead of silently stretching the
// schedule. A closed-loop generator that issues request i+1 only after
// request i returns under-samples exactly the moments the server is
// slow (coordinated omission); this one cannot. Requests dispatched
// behind schedule are additionally counted as "late" so saturation is
// visible even before the percentiles move. See docs/measurement.md.
//
// # Workload
//
// Each request picks a tenant uniformly and an operation from -mix
// (get/put/del/push/pop + the composed move/transfer/drain; weights
// renormalize). Keys are uniform over -keys per tenant; PUT and PUSH
// values are globally unique tokens so the end-of-run conservation
// audit can use a value checksum.
//
// # Conservation audit
//
// With -audit (default), the run tracks every successful PUT/DEL/
// PUSH/POP from responses — counts and wrapping value-sums, which
// commute, so cross-connection response ordering cannot skew them —
// and compares the expectation against the server's AUDIT totals
// after the workers quiesce. Composed MOVE/XFER/DRAIN traffic must
// leave all totals unchanged: that is the paper's composition claim
// (an element is in exactly one object at every instant) checked over
// the wire. A failed audit exits nonzero.
//
// # Output
//
// Human-readable percentile tables on stdout; -json FILE additionally
// writes the composebench-style document (host_cpus/contended honesty
// fields, one row per tenant×op with p50/p99/p999/max ns, per-tenant
// and overall rollups, audit verdict). -slow N fetches the server-side
// view after the run: the per-stage latency breakdown (queue/parse/
// execute/degrade/write, echoed into the report's "stages" block) and
// the N slowest requests' spans from the SLOW verb, each tagged with
// its dominant stage — the server's answer to why the client-side tail
// is fat.
//
// Example, against a default server:
//
//	kvserver -addr 127.0.0.1:7070 -tenants 4 &
//	kvload -addr 127.0.0.1:7070 -tenants 4 -conns 8 -rate 20000 \
//	       -duration 10s -json kvload.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/kvwire"
	"repro/internal/latency"
	"repro/internal/obs"
	"repro/internal/xrand"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "kvserver address")
		conns    = flag.Int("conns", 8, "connection workers")
		rate     = flag.Float64("rate", 5000, "total intended request rate (req/s)")
		duration = flag.Duration("duration", 10*time.Second, "run length (sets the request count at -rate)")
		requests = flag.Int("requests", 0, "exact request count (overrides -duration)")
		tenants  = flag.Int("tenants", 4, "tenant count (must match the server)")
		keys     = flag.Int("keys", 1024, "key range per tenant")
		mix      = flag.String("mix", "get=60,put=15,del=5,move=10,transfer=4,push=2,pop=2,drain=2",
			"operation weights (get,put,del,push,pop,move,transfer,drain)")
		prefill  = flag.Int("prefill", 256, "entries PUT per tenant map (and /4 PUSHed per queue) before the measured run")
		jsonPath = flag.String("json", "", "write the JSON report here")
		seed     = flag.Uint64("seed", 1, "workload RNG seed")
		audit    = flag.Bool("audit", true, "run the end-of-run conservation audit")
		timeout  = flag.Duration("timeout", 0, "per-request connection deadline (0 = none)")
		retries  = flag.Int("retries", 8, "max retries per request on BUSY/TIMEOUT (with jittered backoff)")
		metrics  = flag.String("metrics", "", "fetch the server's METRICS snapshot after the run and write the Prometheus text here")
		slowN    = flag.Int("slow", 0, "fetch the server's per-stage breakdown and SLOW tail exemplars after the run; print the slowest N with stage attribution (0 = off)")
	)
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}
	if *rate <= 0 || *conns < 1 || *tenants < 1 || *keys < 1 {
		fatal(fmt.Errorf("need -rate > 0, -conns/-tenants/-keys >= 1"))
	}
	total := *requests
	if total <= 0 {
		total = int(*rate * duration.Seconds())
	}
	if total < 1 {
		fatal(fmt.Errorf("schedule is empty: raise -rate, -duration or -requests"))
	}

	g := &generator{
		addr: *addr, conns: *conns, rate: *rate, total: total,
		tenants: *tenants, keys: uint64(*keys), weights: weights,
		prefill: *prefill, seed: *seed,
		timeout: *timeout, maxRetries: *retries,
		rec: latency.NewRecorder(*conns, *tenants, int(kvwire.OpCount)),
	}
	if err := g.run(); err != nil {
		fatal(err)
	}

	doc := g.report(os.Stdout)
	if *audit {
		a, err := g.audit()
		if err != nil {
			fatal(fmt.Errorf("audit: %w", err))
		}
		doc.Audit = &a
		printAudit(a)
	}
	if *slowN > 0 {
		// Server-side attribution next to the client-side percentiles
		// above: the per-stage breakdown (echoed into the report's
		// "stages" block) and the slowest requests' spans, each with the
		// stage that dominated its wall time.
		if err := reportServerSide(*addr, &doc, *slowN); err != nil {
			fatal(fmt.Errorf("slow: %w", err))
		}
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *metrics != "" {
		// Fetched after the measured run and audit so the snapshot covers
		// every request the report accounts for.
		text, err := fetchMetrics(*addr)
		if err != nil {
			fatal(fmt.Errorf("metrics: %w", err))
		}
		if err := os.WriteFile(*metrics, []byte(text), 0o644); err != nil {
			fatal(err)
		}
	}
	if g.errs.Load() > 0 {
		fatal(fmt.Errorf("%d requests drew ERR responses", g.errs.Load()))
	}
	if doc.Audit != nil && !doc.Audit.Pass {
		if amb := g.ambiguous.Load(); amb > 0 {
			// An abandoned mutation may or may not have executed before
			// its connection died, so the expectations are not exact and
			// a mismatch is indeterminate rather than a conservation bug.
			fmt.Fprintf(os.Stderr,
				"kvload: audit mismatch with %d ambiguous mutations — indeterminate, not failing\n", amb)
		} else {
			fmt.Fprintln(os.Stderr, "kvload: CONSERVATION AUDIT FAILED")
			os.Exit(1)
		}
	}
}

// opWeights maps each data-path op to its share of traffic.
type opWeights [kvwire.OpCount]int

// parseMix parses "get=60,put=15,..." into weights.
func parseMix(s string) (opWeights, error) {
	names := map[string]kvwire.Op{
		"get": kvwire.OpGet, "put": kvwire.OpPut, "del": kvwire.OpDel,
		"push": kvwire.OpPush, "pop": kvwire.OpPop,
		"move": kvwire.OpMove, "transfer": kvwire.OpXfer, "drain": kvwire.OpDrain,
	}
	var w opWeights
	sum := 0
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return w, fmt.Errorf("bad -mix element %q", part)
		}
		op, ok := names[name]
		if !ok {
			return w, fmt.Errorf("unknown -mix op %q", name)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return w, fmt.Errorf("bad -mix weight %q", part)
		}
		w[op] = n
		sum += n
	}
	if sum == 0 {
		return w, fmt.Errorf("-mix has zero total weight")
	}
	return w, nil
}

// pick selects an op by weight from a uniform draw.
func (w opWeights) pick(r uint64) kvwire.Op {
	sum := 0
	for _, n := range w {
		sum += n
	}
	x := int(r % uint64(sum))
	for op, n := range w {
		if x < n {
			return kvwire.Op(op)
		}
		x -= n
	}
	return kvwire.OpGet
}

// generator owns the run state shared by the connection workers.
type generator struct {
	addr       string
	conns      int
	rate       float64
	total      int
	tenants    int
	keys       uint64
	weights    opWeights
	prefill    int
	seed       uint64
	timeout    time.Duration
	maxRetries int

	rec  *latency.Recorder
	next atomic.Uint64
	late atomic.Uint64
	errs atomic.Uint64

	// Degradation accounting (kvwire.RobustCounters, client-side fields).
	busy      atomic.Uint64 // BUSY responses observed
	timeouts  atomic.Uint64 // TIMEOUT responses + connection deadline expiries
	retries   atomic.Uint64 // retry attempts issued
	ambiguous atomic.Uint64 // mutations abandoned on a dead connection

	// Conservation expectations, tracked from successful responses.
	// Counts and wrapping sums commute, so concurrent workers cannot
	// skew them regardless of response interleaving.
	putN, delN, pushN, popN atomic.Uint64
	putSum, delSum          atomic.Uint64

	start   time.Time
	elapsed time.Duration
}

// conn is one worker's connection.
type conn struct {
	c  net.Conn
	in *bufio.Scanner
}

// fetchMetrics sends the METRICS verb on a fresh connection and reads
// the multi-line Prometheus response up to its "# EOF" terminator. A
// registry-disabled server answers a single "ERR ..." line, surfaced as
// an error.
func fetchMetrics(addr string) (string, error) {
	c, err := dialConn(addr)
	if err != nil {
		return "", err
	}
	defer c.c.Close()
	if _, err := c.c.Write([]byte("METRICS\n")); err != nil {
		return "", err
	}
	var b strings.Builder
	for c.in.Scan() {
		line := c.in.Text()
		if b.Len() == 0 && strings.HasPrefix(line, "ERR ") {
			return "", fmt.Errorf("server: %s", strings.TrimPrefix(line, "ERR "))
		}
		b.WriteString(line)
		b.WriteByte('\n')
		if line == "# EOF" {
			return b.String(), nil
		}
	}
	if err := c.in.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("connection closed before %q terminator", "# EOF")
}

// fetchStats sends the STATS verb and parses the server's one-line
// JSON report document.
func fetchStats(addr string) (kvwire.Doc, error) {
	c, err := dialConn(addr)
	if err != nil {
		return kvwire.Doc{}, err
	}
	defer c.c.Close()
	r, err := c.roundTrip(kvwire.Request{Op: kvwire.OpStats})
	if err != nil {
		return kvwire.Doc{}, err
	}
	if !r.OK() {
		return kvwire.Doc{}, fmt.Errorf("server: %s %s", r.Status, r.Raw)
	}
	var doc kvwire.Doc
	if err := json.Unmarshal([]byte(r.Raw), &doc); err != nil {
		return kvwire.Doc{}, err
	}
	return doc, nil
}

// fetchSlow sends the SLOW verb and parses the tail-exemplar document.
// A spans-disabled server answers "ERR ...", surfaced as an error.
func fetchSlow(addr string) (kvwire.SlowDoc, error) {
	c, err := dialConn(addr)
	if err != nil {
		return kvwire.SlowDoc{}, err
	}
	defer c.c.Close()
	r, err := c.roundTrip(kvwire.Request{Op: kvwire.OpSlow})
	if err != nil {
		return kvwire.SlowDoc{}, err
	}
	if !r.OK() {
		return kvwire.SlowDoc{}, fmt.Errorf("server: %s %s", r.Status, r.Raw)
	}
	var slow kvwire.SlowDoc
	if err := json.Unmarshal([]byte(r.Raw), &slow); err != nil {
		return kvwire.SlowDoc{}, err
	}
	return slow, nil
}

// reportServerSide prints the server's per-stage latency breakdown and
// its slowest requests' spans next to kvload's own client-side
// percentiles, and echoes the stage rows into the report document. The
// "dominant=" token names the stage holding the largest share of each
// exemplar's wall time — the one-line answer to "why was this request
// slow" (chaos assertions grep it).
func reportServerSide(addr string, doc *kvwire.Doc, n int) error {
	srv, err := fetchStats(addr)
	if err != nil {
		return err
	}
	doc.Stages = srv.Stages
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	if len(srv.Stages) > 0 {
		fmt.Println("server stages (service-side, merged across workers):")
		fmt.Printf("%9s %9s  %10s %10s %10s %10s\n",
			"stage", "count", "mean_us", "p50_us", "p99_us", "max_us")
		for _, st := range srv.Stages {
			fmt.Printf("%9s %9d  %10.1f %10.1f %10.1f %10.1f\n",
				st.Stage, st.Count, st.MeanNS/1e3, us(st.P50NS), us(st.P99NS), us(st.MaxNS))
		}
	}
	slow, err := fetchSlow(addr)
	if err != nil {
		return err
	}
	fmt.Printf("server tail exemplars: %d retained, threshold %.1fus\n",
		len(slow.Exemplars), us(slow.ThresholdNS))
	for i, sp := range slow.Exemplars {
		if i >= n {
			break
		}
		fmt.Printf("  req=%d op=%s status=%s tenant=%d wall=%.1fus dominant=%s",
			sp.Req, sp.Op, sp.Status, sp.Tenant, us(sp.WallNS), sp.Dominant())
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			fmt.Printf(" %s=%.1fus", st, us(sp.Stage[st]))
		}
		fmt.Printf(" kcas=%d/%d/%d (publish/help/abort)\n", sp.Publishes, sp.Helps, sp.Aborts)
	}
	return nil
}

func dialConn(addr string) (*conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &conn{c: c, in: bufio.NewScanner(c)}, nil
}

// roundTrip sends one request and parses its response.
func (c *conn) roundTrip(req kvwire.Request) (kvwire.Response, error) {
	if _, err := c.c.Write(req.Append(nil)); err != nil {
		return kvwire.Response{}, err
	}
	if !c.in.Scan() {
		if err := c.in.Err(); err != nil {
			return kvwire.Response{}, err
		}
		return kvwire.Response{}, fmt.Errorf("connection closed by server")
	}
	return kvwire.ParseResponse(c.in.Text(), req.Op != kvwire.OpStats && req.Op != kvwire.OpSlow)
}

func (g *generator) run() error {
	cs := make([]*conn, g.conns)
	for i := range cs {
		c, err := dialConn(g.addr)
		if err != nil {
			return err
		}
		cs[i] = c // the worker owns it from here (it may redial mid-run)
	}
	if err := g.doPrefill(cs[0]); err != nil {
		return fmt.Errorf("prefill: %w", err)
	}

	interval := float64(time.Second) / g.rate
	g.start = time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, g.conns)
	for w := 0; w < g.conns; w++ {
		wg.Add(1)
		go func(w int, c *conn) {
			defer wg.Done()
			if err := g.worker(w, c, interval); err != nil {
				errCh <- fmt.Errorf("conn %d: %w", w, err)
			}
		}(w, cs[w])
	}
	wg.Wait()
	g.elapsed = time.Since(g.start)
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// doPrefill seeds every tenant before the measured interval, tracked
// in the same conservation counters as the run itself.
func (g *generator) doPrefill(c *conn) error {
	rng := xrand.New(g.seed ^ 0xfeedface)
	for tn := 0; tn < g.tenants; tn++ {
		for i := 0; i < g.prefill; i++ {
			v := g.token(uint64(g.conns), rng)
			r, err := c.roundTrip(kvwire.Request{
				Op: kvwire.OpPut, Tenant: tn,
				Keys: []uint64{rng.Uint64() % g.keys}, Val: v,
			})
			if err != nil {
				return err
			}
			if r.OK() {
				g.putN.Add(1)
				g.putSum.Add(v)
			}
		}
		for i := 0; i < g.prefill/4; i++ {
			r, err := c.roundTrip(kvwire.Request{
				Op: kvwire.OpPush, Tenant: tn, Val: g.token(uint64(g.conns), rng),
			})
			if err != nil {
				return err
			}
			if r.OK() {
				g.pushN.Add(1)
			}
		}
	}
	return nil
}

// tokenSeq hands out globally unique value tokens: the owner id in the
// high bits, a per-owner sequence below.
var tokenSeq [1 << 8]atomic.Uint64

func (g *generator) token(owner uint64, _ *xrand.State) uint64 {
	return (owner+1)<<40 | tokenSeq[owner&0xff].Add(1)
}

// worker pulls request indices off the shared schedule and issues them
// at their intended times.
func (g *generator) worker(w int, c *conn, interval float64) error {
	defer func() { c.c.Close() }()
	rng := xrand.New(g.seed ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
	jit := backoff.NewJitter(time.Millisecond, 100*time.Millisecond,
		g.seed^(uint64(w)+1)*0xbf58476d1ce4e5b9)
	for {
		i := g.next.Add(1) - 1
		if i >= uint64(g.total) {
			return nil
		}
		intended := g.start.Add(time.Duration(float64(i) * interval))
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		} else {
			g.late.Add(1)
		}
		req := g.request(w, rng)
		resp, ok, err := g.send(&c, req, jit)
		// Latency from the INTENDED slot: backlog waits AND retry
		// backoff count against the request, not the schedule.
		g.rec.Record(w, req.Tenant, int(req.Op), time.Since(intended))
		if err != nil {
			return err
		}
		if ok {
			g.account(w, req, resp)
		}
	}
}

// neutral reports whether op cannot change the conservation totals:
// GET reads, and the composed MOVE/XFER/DRAIN relocate entries without
// creating or destroying them. Neutral ops are safe to retry even when
// it is unknowable whether a lost attempt executed.
func neutral(op kvwire.Op) bool {
	switch op {
	case kvwire.OpGet, kvwire.OpMove, kvwire.OpXfer, kvwire.OpDrain:
		return true
	}
	return false
}

// send issues one request with bounded jittered retry. Two failure
// classes are distinguished:
//
//   - A wire-level BUSY or TIMEOUT response is the server guaranteeing
//     the op was NOT executed (shed before execution, or exhaustion
//     unwound from an init phase), so ANY op retries safely.
//   - A connection-level failure (deadline expiry, server closed the
//     conn — e.g. its worker was fault-killed mid-op) is ambiguous:
//     the op may have executed before the response was lost. Only
//     conservation-neutral ops retry, on a fresh connection; mutations
//     are abandoned and counted ambiguous.
//
// Returns ok=false when the request was abandoned without a usable
// response (never accounted); a non-nil error aborts the worker.
func (g *generator) send(cp **conn, req kvwire.Request, jit *backoff.Jitter) (kvwire.Response, bool, error) {
	attempts := 0
	for {
		c := *cp
		if g.timeout > 0 {
			c.c.SetDeadline(time.Now().Add(g.timeout))
		}
		resp, err := c.roundTrip(req)
		if err == nil {
			switch resp.Status {
			case "BUSY":
				g.busy.Add(1)
			case "TIMEOUT":
				g.timeouts.Add(1)
			default:
				jit.Reset()
				return resp, true, nil
			}
			if attempts >= g.maxRetries {
				return resp, true, nil // rejected but answered: not executed
			}
		} else {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				g.timeouts.Add(1)
			}
			c.c.Close()
			nc, derr := dialConn(g.addr)
			if derr != nil {
				return kvwire.Response{}, false, fmt.Errorf("redial after %v: %w", err, derr)
			}
			*cp = nc
			if !neutral(req.Op) {
				g.ambiguous.Add(1)
				return kvwire.Response{}, false, nil
			}
			if attempts >= g.maxRetries {
				return kvwire.Response{}, false, nil
			}
		}
		attempts++
		g.retries.Add(1)
		jit.Sleep()
	}
}

// request builds one weighted-random request.
func (g *generator) request(w int, rng *xrand.State) kvwire.Request {
	op := g.weights.pick(rng.Uint64())
	tn := int(rng.Uint64() % uint64(g.tenants))
	dt := 0
	if g.tenants > 1 {
		dt = (tn + 1 + int(rng.Uint64()%uint64(g.tenants-1))) % g.tenants
	}
	k := func() uint64 { return rng.Uint64() % g.keys }
	req := kvwire.Request{Op: op, Tenant: tn, DTenant: dt}
	switch op {
	case kvwire.OpGet, kvwire.OpDel:
		req.Keys = []uint64{k()}
	case kvwire.OpPut:
		req.Keys, req.Val = []uint64{k()}, g.token(uint64(w), rng)
	case kvwire.OpPush:
		req.Val = g.token(uint64(w), rng)
	case kvwire.OpPop:
	case kvwire.OpMove:
		req.Keys, req.TKeys = []uint64{k()}, []uint64{k()}
	case kvwire.OpXfer:
		sk1 := k()
		sk2 := (sk1 + 1 + rng.Uint64()%(g.keys-1)) % g.keys
		tk1 := k()
		tk2 := (tk1 + 1 + rng.Uint64()%(g.keys-1)) % g.keys
		req.Keys, req.TKeys = []uint64{sk1, sk2}, []uint64{tk1, tk2}
	case kvwire.OpDrain:
		req.N = 1 + int(rng.Uint64()%4)
	}
	if g.tenants == 1 && (op == kvwire.OpMove || op == kvwire.OpXfer || op == kvwire.OpDrain) {
		// Composed ops need two tenants; degrade to a read.
		return kvwire.Request{Op: kvwire.OpGet, Tenant: tn, Keys: []uint64{k()}}
	}
	return req
}

// account folds one successful response into the conservation
// expectations. Composed operations are deliberately absent: MOVE,
// XFER and DRAIN relocate entries and must not change any total.
func (g *generator) account(w int, req kvwire.Request, resp kvwire.Response) {
	if resp.Status == "ERR" {
		g.errs.Add(1)
		return
	}
	if !resp.OK() {
		return
	}
	switch req.Op {
	case kvwire.OpPut:
		g.putN.Add(1)
		g.putSum.Add(req.Val)
	case kvwire.OpDel:
		g.delN.Add(1)
		g.delSum.Add(resp.Vals[0])
	case kvwire.OpPush:
		g.pushN.Add(1)
	case kvwire.OpPop:
		g.popN.Add(1)
	}
}

// audit fetches the server's totals and compares them with the
// response-tracked expectations.
func (g *generator) audit() (kvwire.Audit, error) {
	c, err := dialConn(g.addr)
	if err != nil {
		return kvwire.Audit{}, err
	}
	defer c.c.Close()
	r, err := c.roundTrip(kvwire.Request{Op: kvwire.OpAudit})
	if err != nil {
		return kvwire.Audit{}, err
	}
	if !r.OK() || len(r.Vals) != 3 {
		return kvwire.Audit{}, fmt.Errorf("bad AUDIT response %+v", r)
	}
	a := kvwire.Audit{
		ExpectMapCount:   g.putN.Load() - g.delN.Load(),
		ExpectMapSum:     g.putSum.Load() - g.delSum.Load(),
		ExpectQueueCount: g.pushN.Load() - g.popN.Load(),
		GotMapCount:      r.Vals[0],
		GotMapSum:        r.Vals[1],
		GotQueueCount:    r.Vals[2],
	}
	a.Pass = a.GotMapCount == a.ExpectMapCount &&
		a.GotMapSum == a.ExpectMapSum &&
		a.GotQueueCount == a.ExpectQueueCount
	return a, nil
}

// report prints the percentile tables and builds the JSON document.
func (g *generator) report(out *os.File) kvwire.Doc {
	doc := kvwire.NewDoc()
	doc.RateRPS = g.rate
	doc.DurationMS = float64(g.elapsed.Nanoseconds()) / 1e6
	doc.Conns = g.conns
	wall := float64(g.elapsed.Nanoseconds())

	all := g.rec.MergedAll()
	fmt.Fprintf(out, "kvload: %d requests over %.2fs (intended %.0f req/s, achieved %.0f req/s), %d late dispatches\n",
		all.Count, g.elapsed.Seconds(), g.rate, float64(all.Count)*1e9/wall, g.late.Load())
	doc.Robust = &kvwire.RobustCounters{
		Busy:      g.busy.Load(),
		Timeouts:  g.timeouts.Load(),
		Retries:   g.retries.Load(),
		Ambiguous: g.ambiguous.Load(),
	}
	if r := doc.Robust; r.Busy+r.Timeouts+r.Retries+r.Ambiguous > 0 {
		fmt.Fprintf(out, "kvload: degradation: %d busy, %d timeouts, %d retries, %d ambiguous\n",
			r.Busy, r.Timeouts, r.Retries, r.Ambiguous)
	}
	if !doc.Contended {
		fmt.Fprintln(os.Stderr, "kvload: warning: GOMAXPROCS=1 — generator and measurements ran time-sliced on one CPU")
	}
	fmt.Fprintf(out, "%7s %9s %9s  %10s %10s %10s %10s %10s\n",
		"tenant", "op", "count", "mean_us", "p50_us", "p99_us", "p999_us", "max_us")
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for tn := 0; tn < g.tenants; tn++ {
		ops := make([]int, 0, int(kvwire.OpCount))
		for op := 0; op < int(kvwire.OpCount); op++ {
			ops = append(ops, op)
		}
		sort.Ints(ops)
		for _, op := range ops {
			s := g.rec.Merged(tn, op)
			if s.Count == 0 {
				continue
			}
			fmt.Fprintf(out, "%7d %9s %9d  %10.1f %10.1f %10.1f %10.1f %10.1f\n",
				tn, kvwire.Op(op), s.Count, s.MeanNS()/1e3,
				us(s.Percentile(0.5)), us(s.Percentile(0.99)), us(s.Percentile(0.999)), us(s.MaxNS))
			doc.Rows = append(doc.Rows,
				kvwire.RowFrom("kvload", strconv.Itoa(tn), kvwire.Op(op).String(), g.conns, s, wall))
		}
		ts := g.rec.MergedTenant(tn)
		if ts.Count == 0 {
			continue
		}
		fmt.Fprintf(out, "%7d %9s %9d  %10.1f %10.1f %10.1f %10.1f %10.1f\n",
			tn, "all", ts.Count, ts.MeanNS()/1e3,
			us(ts.Percentile(0.5)), us(ts.Percentile(0.99)), us(ts.Percentile(0.999)), us(ts.MaxNS))
		doc.Rows = append(doc.Rows, kvwire.RowFrom("kvload", strconv.Itoa(tn), "all", g.conns, ts, wall))
	}
	overall := kvwire.RowFrom("kvload", "all", "all", g.conns, all, wall)
	overall.Late = g.late.Load()
	doc.Rows = append(doc.Rows, overall)
	fmt.Fprintf(out, "%7s %9s %9d  %10.1f %10.1f %10.1f %10.1f %10.1f\n",
		"all", "all", all.Count, all.MeanNS()/1e3,
		us(all.Percentile(0.5)), us(all.Percentile(0.99)), us(all.Percentile(0.999)), us(all.MaxNS))
	return doc
}

func printAudit(a kvwire.Audit) {
	verdict := "PASS"
	if !a.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("conservation audit: %s (maps %d/%d entries, sum %d/%d; queues %d/%d) [expect/got]\n",
		verdict, a.ExpectMapCount, a.GotMapCount, a.ExpectMapSum, a.GotMapSum,
		a.ExpectQueueCount, a.GotQueueCount)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvload:", err)
	os.Exit(1)
}
