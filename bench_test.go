// Benchmarks regenerating every figure of the paper's evaluation plus
// the ablations from DESIGN.md §4. Each figure benchmark emits one
// sub-benchmark per (mix, implementation, thread count) cell and reports
// ms/trial (the figures' y-axis: total time for the trial's operations,
// local work subtracted) alongside Go's ns/op.
//
//	go test -bench 'Fig2'        # Figure 2 (queue/stack)
//	go test -bench 'Fig3'        # Figure 3 (two queues)
//	go test -bench 'Fig4'        # Figure 4 (two stacks)
//	go test -bench 'Backoff'     # §6/§7 backoff variants
//	go test -bench 'A1_Overhead' # scas/read overhead on plain ops
//	go test -bench 'A2_StackABA' # §7 ABA-counter trade-off
//	go test -bench 'A3_DCAS'     # DCAS vs two plain CASes
//	go test -bench 'MoveN'       # §8 n-object extension
//	go test -bench 'HashMove'    # §1.1 hash-map scenario
//	go test -bench 'MapChurn'    # sharded-map churn + MoveN rebalance
//	go test -bench 'Elim'        # elimination-backoff layer off vs on
//
// The paper's full parameters are 5M ops × 50 trials × 1–16 threads; the
// benchmarks default to a scaled-down cell (100k ops) so a full sweep
// stays tractable — cmd/composebench runs the full configuration.
package repro_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/elim"
	"repro/internal/harness"
	"repro/internal/hazard"
	"repro/internal/kcas"
	"repro/internal/msqueue"
	"repro/internal/plainqueue"
	"repro/internal/plainstack"
	"repro/internal/tstack"
	"repro/internal/word"
	"repro/internal/xrand"
)

const benchOps = 100_000

var benchThreads = []int{1, 2, 4, 8, 16}

// benchFigure runs one paper figure: every panel (operation mix), both
// implementations, across thread counts.
func benchFigure(b *testing.B, pair harness.Pair, backoff bool) {
	for _, mix := range []harness.Mix{harness.MoveOnly, harness.InsertRemoveOnly, harness.Mixed} {
		for _, impl := range []harness.Impl{harness.LockFree, harness.Blocking} {
			for _, threads := range benchThreads {
				name := fmt.Sprintf("mix=%s/impl=%s/threads=%d", sanitize(mix.String()), impl, threads)
				b.Run(name, func(b *testing.B) {
					o := harness.Options{
						Impl: impl, Pair: pair, Mix: mix,
						Contention: harness.High,
						Threads:    threads,
						TotalOps:   benchOps,
						Trials:     1,
						Backoff:    backoff,
						Prefill:    512,
						Pin:        true,
					}
					var totalNS float64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						r := harness.Run(o)
						totalNS += r.Summary.Mean
					}
					b.StopTimer()
					b.ReportMetric(totalNS/float64(b.N)/1e6, "ms/trial")
					b.ReportMetric(float64(benchOps)*float64(b.N)*1e9/totalNS, "ops/s")
				})
			}
		}
	}
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			out = append(out, '+')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// BenchmarkFig2 regenerates Figure 2: queue/stack composition, no
// backoff.
func BenchmarkFig2_QueueStack(b *testing.B) { benchFigure(b, harness.QueueStack, false) }

// BenchmarkFig3 regenerates Figure 3: two queues, no backoff.
func BenchmarkFig3_Queue(b *testing.B) { benchFigure(b, harness.QueueQueue, false) }

// BenchmarkFig4 regenerates Figure 4: two stacks, no backoff.
func BenchmarkFig4_Stack(b *testing.B) { benchFigure(b, harness.StackStack, false) }

// BenchmarkBackoff reproduces the §6/§7 backoff discussion (queue/stack
// pairing with exponential backoff; blocking improves under high
// contention, lock-free stays competitive).
func BenchmarkBackoff_QueueStack(b *testing.B) { benchFigure(b, harness.QueueStack, true) }

// --- A1: overhead of scas/read on the original operations ----------------

func BenchmarkA1_Overhead_Queue_MoveReady(b *testing.B) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 16})
	th := rt.RegisterThread()
	q := msqueue.New(th)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(th, uint64(i))
		q.Dequeue(th)
	}
}

func BenchmarkA1_Overhead_Queue_Plain(b *testing.B) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 16})
	th := rt.RegisterThread()
	q := plainqueue.New(th)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(th, uint64(i))
		q.Dequeue(th)
	}
}

func BenchmarkA1_Overhead_Stack_MoveReady(b *testing.B) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 16})
	th := rt.RegisterThread()
	s := tstack.New(th)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(th, uint64(i))
		s.Pop(th)
	}
}

func BenchmarkA1_Overhead_Stack_Plain(b *testing.B) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 16})
	th := rt.RegisterThread()
	s := plainstack.New(th)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(th, uint64(i))
		s.Pop(th)
	}
}

// Contended A1: multiple threads doing plain operations on the
// move-ready vs plain queue.
func benchContendedQueuePair(b *testing.B, moveReady bool, threads int) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: threads + 1, ArenaCapacity: 1 << 18})
	setup := rt.RegisterThread()
	var enq func(*core.Thread, uint64)
	var deq func(*core.Thread) (uint64, bool)
	if moveReady {
		q := msqueue.New(setup)
		enq = func(t *core.Thread, v uint64) { q.Enqueue(t, v) }
		deq = func(t *core.Thread) (uint64, bool) { return q.Dequeue(t) }
	} else {
		q := plainqueue.New(setup)
		enq = q.Enqueue
		deq = q.Dequeue
	}
	perThread := b.N/threads + 1
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < threads; w++ {
		th := rt.RegisterThread()
		wg.Add(1)
		go func(th *core.Thread) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				enq(th, uint64(i))
				deq(th)
			}
		}(th)
	}
	wg.Wait()
}

func BenchmarkA1_Contended_Queue_MoveReady_4T(b *testing.B) { benchContendedQueuePair(b, true, 4) }
func BenchmarkA1_Contended_Queue_Plain_4T(b *testing.B)     { benchContendedQueuePair(b, false, 4) }

// --- A2: §7 stack ABA counter --------------------------------------------

// benchStackMoves: threads move a small token population between two
// stacks — the §7 worst case for false helping.
func benchStackMoves(b *testing.B, versioned bool, threads int) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: threads + 1, ArenaCapacity: 1 << 18})
	setup := rt.RegisterThread()
	mk := func() *tstack.Stack {
		if versioned {
			return tstack.NewVersioned(setup)
		}
		return tstack.New(setup)
	}
	s1, s2 := mk(), mk()
	for i := uint64(1); i <= 64; i++ {
		s1.Push(setup, i)
	}
	perThread := b.N/threads + 1
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < threads; w++ {
		th := rt.RegisterThread()
		wg.Add(1)
		go func(th *core.Thread, w int) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				if (i+w)&1 == 0 {
					th.Move(s1, s2, 0, 0)
				} else {
					th.Move(s2, s1, 0, 0)
				}
			}
		}(th, w)
	}
	wg.Wait()
	b.StopTimer()
	helps, strays, late := rt.KCASPool().Stats()
	b.ReportMetric(float64(helps)/float64(b.N), "helps/op")
	b.ReportMetric(float64(strays)/float64(b.N), "strays/op")
	_ = late
}

func BenchmarkA2_StackABA_Move_Plain_4T(b *testing.B)     { benchStackMoves(b, false, 4) }
func BenchmarkA2_StackABA_Move_Versioned_4T(b *testing.B) { benchStackMoves(b, true, 4) }

// The other side of the §7 trade-off: versioning slows the normal
// operations slightly.
func benchStackPlainOps(b *testing.B, versioned bool) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 16})
	th := rt.RegisterThread()
	var s *tstack.Stack
	if versioned {
		s = tstack.NewVersioned(th)
	} else {
		s = tstack.New(th)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(th, uint64(i))
		s.Pop(th)
	}
}

func BenchmarkA2_StackABA_PlainOps_Plain(b *testing.B)     { benchStackPlainOps(b, false) }
func BenchmarkA2_StackABA_PlainOps_Versioned(b *testing.B) { benchStackPlainOps(b, true) }

// --- A3: DCAS cost ---------------------------------------------------------

// benchSlots is the raw-engine slot assignment for the A3 benchmarks
// (mirrors core's layout: 3 descriptor slots, pair mirrors at 6/7,
// k-word mirrors from 8).
var benchSlots = kcas.Slots{PairHPD: 0, KHPD: 1, RDCSSHPD: 2, PairMirror1: 6, PairMirror2: 7, KMirrorBase: 8}

func BenchmarkA3_DCAS_Uncontended(b *testing.B) {
	nodeDom := hazard.New(2, 24)
	descDom := hazard.New(2, 3)
	pool := kcas.NewPool(1<<14, descDom)
	ctx := kcas.NewCtx(pool, nodeDom, 0, benchSlots)
	var w1, w2 word.Word
	v1, v2 := word.MakeNode(100, 0), word.MakeNode(101, 0)
	w1.Store(v1)
	w2.Store(v2)
	n1, n2 := word.MakeNode(102, 0), word.MakeNode(103, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, ref := ctx.AllocPair()
		e1, e2 := &d.Entries[0], &d.Entries[1]
		e1.Ptr, e1.Old, e1.New = &w1, v1, n1
		e2.Ptr, e2.Old, e2.New = &w2, v2, n2
		if ctx.ExecutePair(d, ref) != kcas.Success {
			b.Fatal("uncontended DCAS failed")
		}
		ctx.Retire(d, ref)
		v1, n1 = n1, v1
		v2, n2 = n2, v2
	}
}

func BenchmarkA3_TwoPlainCAS(b *testing.B) {
	var w1, w2 word.Word
	v1, v2 := word.MakeNode(100, 0), word.MakeNode(101, 0)
	w1.Store(v1)
	w2.Store(v2)
	n1, n2 := word.MakeNode(102, 0), word.MakeNode(103, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !w1.CAS(v1, n1) || !w2.CAS(v2, n2) {
			b.Fatal("CAS failed")
		}
		v1, n1 = n1, v1
		v2, n2 = n2, v2
	}
}

func BenchmarkA3_DCAS_Contended_4T(b *testing.B) {
	const threads = 4
	nodeDom := hazard.New(threads, 24)
	descDom := hazard.New(threads, 3)
	pool := kcas.NewPool(1<<16, descDom)
	var w1, w2 word.Word
	w1.Store(word.MakeNode(100, 0))
	w2.Store(word.MakeNode(101, 0))
	perThread := b.N/threads + 1
	var wg sync.WaitGroup
	b.ResetTimer()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			ctx := kcas.NewCtx(pool, nodeDom, t, benchSlots)
			for i := 0; i < perThread; i++ {
				o1 := ctx.Read(&w1)
				o2 := ctx.Read(&w2)
				d, ref := ctx.AllocPair()
				e1, e2 := &d.Entries[0], &d.Entries[1]
				e1.Ptr, e1.Old, e1.New = &w1, o1, word.MakeNode(200+uint64(t)<<8+uint64(i&0xff), 0)
				e2.Ptr, e2.Old, e2.New = &w2, o2, word.MakeNode(300+uint64(t)<<8+uint64(i&0xff), 0)
				if ctx.ExecutePair(d, ref) == kcas.FirstFailed {
					ctx.FreeDirect(d, ref)
				} else {
					ctx.Retire(d, ref)
				}
			}
			ctx.Flush()
		}(t)
	}
	wg.Wait()
}

// --- E-MOVEN: §8 extension --------------------------------------------------

func benchMoveN(b *testing.B, targets int) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 20})
	th := rt.RegisterThread()
	src := msqueue.New(th)
	dsts := make([]core.Inserter, targets)
	keys := make([]uint64, targets)
	sinks := make([]*tstack.Stack, targets)
	for i := range dsts {
		sinks[i] = tstack.New(th)
		dsts[i] = sinks[i]
	}
	src.Enqueue(th, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := th.MoveN(src, dsts, 0, keys); !ok {
			b.Fatal("MoveN failed")
		}
		// Recycle: drain one stack back into the source.
		v, _ := sinks[0].Pop(th)
		src.Enqueue(th, v)
		for j := 1; j < targets; j++ {
			sinks[j].Pop(th)
		}
	}
}

func BenchmarkMoveN_1Target(b *testing.B)  { benchMoveN(b, 1) }
func BenchmarkMoveN_2Targets(b *testing.B) { benchMoveN(b, 2) }
func BenchmarkMoveN_4Targets(b *testing.B) { benchMoveN(b, 4) }
func BenchmarkMoveN_7Targets(b *testing.B) { benchMoveN(b, 7) }

// Move (DCAS-based) vs MoveN with one target (MCAS-based): the cost of
// generality.
func BenchmarkMoveN_vs_Move_DCAS(b *testing.B) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 18})
	th := rt.RegisterThread()
	src := msqueue.New(th)
	dst := tstack.New(th)
	src.Enqueue(th, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := th.Move(src, dst, 0, 0)
		w, _ := th.Move(dst, src, 0, 0)
		_, _ = v, w
	}
}

// --- E-BATCH: batched move pipeline ------------------------------------------

// benchMoveBatch measures B moves issued through one MoveBuffer flush
// against B independent Move calls over the same queue/stack pair: the
// fixed per-move costs (descriptor churn, hazard publication, retire
// traffic) are what the flush amortizes. The two mechanisms run
// interleaved within each iteration — a paired design, so host noise
// cancels out of the comparison — and each reports its own ns/move;
// "speedup" is unbatched/batched. Go's ns/op covers both halves.
//
// Memory: Go's per-benchmark allocation accounting cannot be split by
// half, so the alloc comparison runs as its own pass — AllocsPerCycle
// below reports the delta: batched cycles allocate strictly less (the
// retire/scan pipelines grow in the unbatched path, the flush path
// recycles in place).
// batchBenchWorld is one mechanism's fully isolated state: its own
// runtime, thread, descriptor contexts and containers, so neither
// mechanism's housekeeping (retire scans, pool compaction) can
// subsidize the other.
type batchBenchWorld struct {
	th   *core.Thread
	q    *repro.Queue
	s    *repro.Stack
	buf  *repro.MoveBatch
	half func(src core.Remover, dst core.Inserter)
}

func newBatchBenchWorld(b *testing.B, batchSize int, batched bool) *batchBenchWorld {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 18})
	w := &batchBenchWorld{th: rt.RegisterThread()}
	w.q = repro.NewQueue(w.th)
	w.s = repro.NewStack(w.th)
	for i := uint64(0); i < uint64(batchSize); i++ {
		w.q.Enqueue(w.th, i)
	}
	if batched {
		w.buf = repro.NewMoveBatchSize(w.th, batchSize)
		w.half = func(src core.Remover, dst core.Inserter) {
			for i := 0; i < batchSize; i++ {
				w.buf.Add(src, dst, 0, 0)
			}
			for _, r := range w.buf.Flush() {
				if !r.OK {
					b.Fatal("batched move failed")
				}
			}
		}
	} else {
		w.half = func(src core.Remover, dst core.Inserter) {
			for i := 0; i < batchSize; i++ {
				if _, ok := w.th.Move(src, dst, 0, 0); !ok {
					b.Fatal("move failed")
				}
			}
		}
	}
	return w
}

func benchMoveBatch(b *testing.B, batchSize int) {
	bw := newBatchBenchWorld(b, batchSize, true)
	pw := newBatchBenchWorld(b, batchSize, false)
	var batchedNS, plainNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		bw.half(bw.q, bw.s)
		bw.half(bw.s, bw.q)
		t1 := time.Now()
		pw.half(pw.q, pw.s)
		pw.half(pw.s, pw.q)
		batchedNS += t1.Sub(t0).Nanoseconds()
		plainNS += time.Since(t1).Nanoseconds()
	}
	b.StopTimer()
	moves := float64(b.N * 2 * batchSize)
	b.ReportMetric(float64(batchedNS)/moves, "ns/move-batched")
	b.ReportMetric(float64(plainNS)/moves, "ns/move-unbatched")
	if batchedNS > 0 {
		b.ReportMetric(float64(plainNS)/float64(batchedNS), "speedup")
	}
}

func BenchmarkMoveBatch_B4(b *testing.B)  { benchMoveBatch(b, 4) }
func BenchmarkMoveBatch_B16(b *testing.B) { benchMoveBatch(b, 16) }
func BenchmarkMoveBatch_B64(b *testing.B) { benchMoveBatch(b, 64) }

// BenchmarkMoveBatch_Allocs isolates the allocation half of the
// comparison with Go's native accounting, one mechanism per run: the
// flush path recycles descriptors and nodes in place, so its pool and
// retire structures stop growing almost immediately, while the
// unbatched pipelines keep widening theirs — visible as higher B/op
// and allocs/op over the same move count.
func benchMoveBatchAllocs(b *testing.B, batchSize int, batched bool) {
	w := newBatchBenchWorld(b, batchSize, batched)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.half(w.q, w.s)
		w.half(w.s, w.q)
	}
}

func BenchmarkMoveBatch_Allocs_B4(b *testing.B)  { benchMoveBatchAllocs(b, 4, true) }
func BenchmarkMoveBatch_Allocs_B16(b *testing.B) { benchMoveBatchAllocs(b, 16, true) }
func BenchmarkMoveBatch_Allocs_B64(b *testing.B) { benchMoveBatchAllocs(b, 64, true) }

func BenchmarkMoveBatch_Allocs_Unbatched_B4(b *testing.B)  { benchMoveBatchAllocs(b, 4, false) }
func BenchmarkMoveBatch_Allocs_Unbatched_B16(b *testing.B) { benchMoveBatchAllocs(b, 16, false) }
func BenchmarkMoveBatch_Allocs_Unbatched_B64(b *testing.B) { benchMoveBatchAllocs(b, 64, false) }

// --- E-MAP: sharded-map churn + rebalance ------------------------------------

// benchMapChurn measures the keyed workload over two growing sharded
// maps: inserts/removes/lookups mixed with keyed cross-map moves and §8
// MoveN fan-outs, with shard grows (all entry relocations via MoveN)
// inside the measured interval. Reported alongside ops/s: grows/trial,
// how much rebalancing the interval absorbed.
func benchMapChurn(b *testing.B, threads int, rebalancer bool) {
	o := harness.MapOptions{
		Threads:    threads,
		TotalOps:   benchOps,
		Trials:     1,
		Keys:       8192,
		Rebalancer: rebalancer,
		Contention: harness.High,
		Pin:        true,
	}
	var totalNS, grows float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.RunMapChurn(o)
		totalNS += r.Summary.Mean
		grows += r.Grows
	}
	b.StopTimer()
	b.ReportMetric(totalNS/float64(b.N)/1e6, "ms/trial")
	b.ReportMetric(float64(benchOps)*float64(b.N)*1e9/totalNS, "ops/s")
	b.ReportMetric(grows/float64(b.N), "grows/trial")
}

func BenchmarkMapChurn(b *testing.B) {
	for _, threads := range benchThreads {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchMapChurn(b, threads, false)
		})
	}
}

func BenchmarkMapChurn_Rebalancer(b *testing.B) {
	for _, threads := range benchThreads {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			benchMapChurn(b, threads, true)
		})
	}
}

// Plain keyed throughput on one sharded map, no moves: the map's own
// hot path with grows amortized in.
func BenchmarkMap_InsertRemove_1T(b *testing.B) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 20})
	th := rt.RegisterThread()
	m := repro.NewHashMap(th, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) & 8191
		m.Insert(th, k, k)
		m.Remove(th, k)
	}
}

// --- E-ELIM: elimination-backoff contention layer ----------------------------

// benchElimStack runs the §6 high-contention stack/stack insert/remove
// cell — the configuration Figure 4 shows collapsing — with the
// elimination layer off or on; the on-runs also report their hit rate.
func benchElimStack(b *testing.B, threads int, on bool) {
	o := harness.Options{
		Impl: harness.LockFree, Pair: harness.StackStack,
		Mix: harness.InsertRemoveOnly, Contention: harness.High,
		Threads: threads, TotalOps: benchOps, Trials: 1,
		Elimination: on, Prefill: 512, Pin: true,
	}
	var totalNS, hits float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.Run(o)
		totalNS += r.Summary.Mean
		hits += r.ElimHits
	}
	b.StopTimer()
	b.ReportMetric(totalNS/float64(b.N)/1e6, "ms/trial")
	b.ReportMetric(float64(benchOps)*float64(b.N)*1e9/totalNS, "ops/s")
	if on {
		b.ReportMetric(hits/float64(b.N)/float64(benchOps), "hits/op")
	}
}

func BenchmarkElim_Stack(b *testing.B) {
	for _, on := range []bool{false, true} {
		for _, threads := range benchThreads {
			b.Run(fmt.Sprintf("elim=%v/threads=%d", on, threads), func(b *testing.B) {
				benchElimStack(b, threads, on)
			})
		}
	}
}

// BenchmarkElim_MapChurn: the keyed churn scenario with per-shard
// elimination arrays off vs on (mid-grow inserts park there).
func BenchmarkElim_MapChurn(b *testing.B) {
	for _, on := range []bool{false, true} {
		for _, threads := range benchThreads {
			b.Run(fmt.Sprintf("elim=%v/threads=%d", on, threads), func(b *testing.B) {
				o := harness.MapOptions{
					Threads: threads, TotalOps: benchOps, Trials: 1,
					Keys: 8192, Elimination: on,
					Contention: harness.High, Pin: true,
				}
				var totalNS float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := harness.RunMapChurn(o)
					totalNS += r.Summary.Mean
				}
				b.StopTimer()
				b.ReportMetric(totalNS/float64(b.N)/1e6, "ms/trial")
				b.ReportMetric(float64(benchOps)*float64(b.N)*1e9/totalNS, "ops/s")
			})
		}
	}
}

// BenchmarkElim_ParkMiss is the layer's worst-case fixed cost: a park
// that times out with no taker (the price a lone contended push pays
// before falling back to its CAS loop).
func BenchmarkElim_ParkMiss(b *testing.B) {
	a := elim.NewArray(elim.Config{Slots: 1, Spins: 64}, 2)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Park(rng.Uint64(), 0, uint64(i)) {
			b.Fatal("park hit with no taker")
		}
	}
}

// --- E-HASH: §1.1 scenario ---------------------------------------------------

func BenchmarkHashMove_MapToQueue(b *testing.B) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 20})
	th := rt.RegisterThread()
	m := repro.NewHashMap(th, 64)
	q := repro.NewQueue(th)
	m.Insert(th, 1, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := th.Move(m, q, 1, 0); !ok {
			b.Fatal("map→queue move failed")
		}
		if _, ok := th.Move(q, m, 0, 1); !ok {
			b.Fatal("queue→map move failed")
		}
	}
}
