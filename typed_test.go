package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro"
)

type payload struct {
	ID   int
	Name string
}

func TestBoxPutTakePeek(t *testing.T) {
	b := repro.NewBox[payload]()
	h1 := b.Put(payload{1, "one"})
	h2 := b.Put(payload{2, "two"})
	if h1 == h2 {
		t.Fatal("handles must be distinct")
	}
	if got := b.Peek(h1); got.Name != "one" {
		t.Fatalf("Peek: %+v", got)
	}
	if got := b.Take(h2); got.ID != 2 {
		t.Fatalf("Take: %+v", got)
	}
	if got := b.Take(h1); got.ID != 1 {
		t.Fatalf("Take: %+v", got)
	}
	// Handles recycle.
	h3 := b.Put(payload{3, "three"})
	if b.Peek(h3).ID != 3 {
		t.Fatal("recycled handle broken")
	}
}

func TestTypedQueueStack(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2})
	th := rt.RegisterThread()
	box := repro.NewBox[string]()
	q := repro.NewQueueOf[string](th, box)
	s := repro.NewStackOf[string](th, box)

	q.Enqueue(th, "hello")
	q.Enqueue(th, "world")
	if v, ok := q.Dequeue(th); !ok || v != "hello" {
		t.Fatalf("Dequeue: %q,%v", v, ok)
	}
	s.Push(th, "top")
	if v, ok := s.Pop(th); !ok || v != "top" {
		t.Fatalf("Pop: %q,%v", v, ok)
	}
	if _, ok := s.Pop(th); ok {
		t.Fatal("empty typed stack")
	}
}

func TestMoveTyped(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2})
	th := rt.RegisterThread()
	box := repro.NewBox[payload]()
	q := repro.NewQueueOf[payload](th, box)
	s := repro.NewStackOf[payload](th, box)

	q.Enqueue(th, payload{42, "answer"})
	v, ok := repro.MoveTyped(th, q, s)
	if !ok || v.ID != 42 {
		t.Fatalf("MoveTyped: %+v,%v", v, ok)
	}
	got, ok := s.Pop(th)
	if !ok || got.Name != "answer" {
		t.Fatalf("value corrupted through move: %+v", got)
	}
}

func TestMoveTypedRequiresSharedBox(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2})
	th := rt.RegisterThread()
	q := repro.NewQueueOf[int](th, repro.NewBox[int]())
	s := repro.NewStackOf[int](th, repro.NewBox[int]())
	q.Enqueue(th, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for distinct boxes")
		}
	}()
	repro.MoveTyped(th, q, s)
}

func TestTypedConcurrent(t *testing.T) {
	const workers = 4
	const per = 2000
	rt := repro.NewRuntime(repro.Config{MaxThreads: workers + 1})
	setup := rt.RegisterThread()
	box := repro.NewBox[string]()
	q := repro.NewQueueOf[string](setup, box)
	var wg sync.WaitGroup
	var got sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < per; i++ {
				q.Enqueue(th, fmt.Sprintf("%d-%d", w, i))
				if v, ok := q.Dequeue(th); ok {
					if _, dup := got.LoadOrStore(v, true); dup {
						t.Errorf("value %q delivered twice", v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for {
		v, ok := q.Dequeue(setup)
		if !ok {
			break
		}
		if _, dup := got.LoadOrStore(v, true); dup {
			t.Fatalf("value %q delivered twice", v)
		}
	}
	n := 0
	got.Range(func(_, _ any) bool { n++; return true })
	if n != workers*per {
		t.Fatalf("accounted %d of %d", n, workers*per)
	}
}

func TestTypedMap(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2})
	th := rt.RegisterThread()
	box := repro.NewBox[payload]()
	hot := repro.NewMapOf[payload](th, box, 4)
	cold := repro.NewMapOf[payload](th, box, 4)

	if !hot.Put(th, 7, payload{7, "seven"}) {
		t.Fatal("Put failed")
	}
	if hot.Put(th, 7, payload{8, "dup"}) {
		t.Fatal("duplicate Put succeeded")
	}
	if v, ok := hot.Get(th, 7); !ok || v.Name != "seven" {
		t.Fatalf("Get: %+v,%v", v, ok)
	}
	// Atomic keyed move between typed maps sharing the box.
	if v, ok := repro.MoveKeyed(th, hot, cold, 7, 70); !ok || v.ID != 7 {
		t.Fatalf("MoveKeyed: %+v,%v", v, ok)
	}
	if _, ok := hot.Get(th, 7); ok {
		t.Fatal("entry still visible in source map")
	}
	if v, ok := cold.Get(th, 70); !ok || v.Name != "seven" {
		t.Fatalf("entry missing from target map: %+v,%v", v, ok)
	}
	if v, ok := cold.Delete(th, 70); !ok || v.ID != 7 {
		t.Fatalf("Delete: %+v,%v", v, ok)
	}
	if _, ok := cold.Delete(th, 70); ok {
		t.Fatal("second Delete succeeded")
	}
	// Growth keeps typed entries reachable.
	for i := uint64(100); i < 600; i++ {
		if !hot.Put(th, i, payload{int(i), "bulk"}) {
			t.Fatalf("bulk Put %d failed", i)
		}
	}
	if grows, _, _ := hot.M.Stats(); grows == 0 {
		t.Fatal("typed map never grew")
	}
	for i := uint64(100); i < 600; i++ {
		if v, ok := hot.Get(th, i); !ok || v.ID != int(i) {
			t.Fatalf("Get(%d) after grow: %+v,%v", i, v, ok)
		}
	}
}

func TestMoveBatchOf(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 16})
	th := rt.RegisterThread()
	box := repro.NewBox[string]()
	q := repro.NewQueueOf[string](th, box)
	s := repro.NewStackOf[string](th, box)
	m := repro.NewMapOf[string](th, box, 16)
	q.Enqueue(th, "a")
	q.Enqueue(th, "b")
	m.Put(th, 7, "keyed")

	b := repro.NewMoveBatchOf[string](th, box)
	if !b.Add(q, s, 0, 0) || !b.Add(q, s, 0, 0) || !b.Add(m, s, 7, 0) || !b.Add(q, s, 0, 0) {
		t.Fatal("Adds rejected below capacity")
	}
	res := b.Flush()
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	if !res[0].OK || res[0].Val != "a" || !res[1].OK || res[1].Val != "b" {
		t.Fatalf("queue moves: %+v %+v", res[0], res[1])
	}
	if !res[2].OK || res[2].Val != "keyed" {
		t.Fatalf("keyed move: %+v", res[2])
	}
	// The 4th move drains an already-emptied queue. The prepare phase
	// ran before any commit — the queue still looked non-empty then —
	// so this fails at its commit, not fast.
	if res[3].OK || res[3].FailedPrepare {
		t.Fatalf("draining move must fail at commit: %+v", res[3])
	}
	// LIFO: the stack now pops keyed, b, a.
	for _, want := range []string{"keyed", "b", "a"} {
		if v, ok := s.Pop(th); !ok || v != want {
			t.Fatalf("pop: %q %v, want %q", v, ok, want)
		}
	}
	// A flush starting from an empty source does fail in the prepare
	// phase.
	b.Add(q, s, 0, 0)
	if res := b.Flush(); res[0].OK || !res[0].FailedPrepare {
		t.Fatalf("empty-source move must fail fast: %+v", res[0])
	}
}

func TestMoveBatchOfRequiresSharedBox(t *testing.T) {
	rt := repro.NewRuntime(repro.Config{MaxThreads: 2, ArenaCapacity: 1 << 16})
	th := rt.RegisterThread()
	b := repro.NewMoveBatchOf[int](th, repro.NewBox[int]())
	other := repro.NewQueueOf[int](th, repro.NewBox[int]())
	same := repro.NewStackOf[int](th, b.Box)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign box must panic")
		}
	}()
	b.Add(other, same, 0, 0)
}
